package migratory

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"migratory/internal/core"
	"migratory/internal/directory"
	"migratory/internal/memory"
	"migratory/internal/placement"
	"migratory/internal/snoop"
	"migratory/internal/trace"
)

// decodeAccesses turns fuzzer bytes into a trace over a small contended
// address space: 2 bytes per access (node+kind, block).
func decodeAccesses(data []byte, nodes, blocks int) []trace.Access {
	var accs []trace.Access
	for i := 0; i+1 < len(data); i += 2 {
		accs = append(accs, trace.Access{
			Node: memory.NodeID(int(data[i]>>1) % nodes),
			Kind: trace.Kind(data[i] & 1),
			Addr: memory.Addr(int(data[i+1]) % blocks * 16),
		})
	}
	return accs
}

func fuzzSeeds(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x02, 0x00, 0x03, 0x00, 0x04, 0x00}) // migratory-ish
	f.Add([]byte{0x01, 0x00, 0x02, 0x00, 0x04, 0x00, 0x06, 0x00})
	seed := make([]byte, 128)
	for i := range seed {
		seed[i] = byte(i*7 + 3)
	}
	f.Add(seed)
}

// FuzzDirectoryProtocols hammers every directory policy with arbitrary
// traces, checking the structural invariants and that no processor ever
// observes a stale value.
func FuzzDirectoryProtocols(f *testing.F) {
	fuzzSeeds(f)
	geom := memory.MustGeometry(16, 4096)
	policies := append(core.Policies(), core.Stenstrom)
	f.Fuzz(func(t *testing.T, data []byte) {
		accs := decodeAccesses(data, 5, 12)
		for _, pol := range policies {
			sys, err := directory.New(directory.Config{
				Nodes: 5, Geometry: geom, CacheBytes: 128, Assoc: 2,
				Policy: pol, Placement: placement.NewRoundRobin(5),
				CheckCoherence: true,
			})
			if err != nil {
				t.Fatal(err)
			}
			for i, a := range accs {
				if err := sys.Access(a); err != nil {
					t.Fatalf("%s: access %d (%v): %v", pol.Name, i, a, err)
				}
			}
			if err := sys.CheckInvariants(); err != nil {
				t.Fatalf("%s: %v", pol.Name, err)
			}
		}
	})
}

// FuzzSnoopProtocols is the bus-side twin, covering all five protocols and
// a hysteresis variant.
func FuzzSnoopProtocols(f *testing.F) {
	fuzzSeeds(f)
	geom := memory.MustGeometry(16, 4096)
	type variant struct {
		p snoop.Protocol
		h int
	}
	variants := []variant{
		{snoop.MESI, 1}, {snoop.Adaptive, 1}, {snoop.Adaptive, 2},
		{snoop.AdaptiveMigrateFirst, 1}, {snoop.Symmetry, 1}, {snoop.UpdateOnce, 1}, {snoop.Berkeley, 1},
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		accs := decodeAccesses(data, 5, 12)
		for _, v := range variants {
			sys, err := snoop.New(snoop.Config{
				Nodes: 5, Geometry: geom, CacheBytes: 128, Assoc: 2,
				Protocol: v.p, Hysteresis: v.h, CheckCoherence: true,
			})
			if err != nil {
				t.Fatal(err)
			}
			for i, a := range accs {
				if err := sys.Access(a); err != nil {
					t.Fatalf("%s/h%d: access %d (%v): %v", v.p, v.h, i, a, err)
				}
			}
			if err := sys.CheckInvariants(); err != nil {
				t.Fatalf("%s/h%d: %v", v.p, v.h, err)
			}
		}
	})
}

// FuzzMTRRoundTrip encodes arbitrary traces in the streaming .mtr format
// and decodes them back: the round trip must be exact, and every truncated
// prefix must error (never succeed, never panic).
func FuzzMTRRoundTrip(f *testing.F) {
	fuzzSeeds(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		accs := decodeAccesses(data, 64, 250)
		var buf bytes.Buffer
		w := trace.NewWriter(&buf, trace.Header{BlockSize: 16, PageSize: 4096, Nodes: 64})
		for _, a := range accs {
			if err := w.Write(a); err != nil {
				t.Fatal(err)
			}
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		full := buf.Bytes()

		src, err := trace.NewFileSource(bytes.NewReader(full))
		if err != nil {
			t.Fatal(err)
		}
		got, err := trace.ReadAll(src)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(accs) {
			t.Fatalf("round trip: %d != %d", len(got), len(accs))
		}
		for i := range accs {
			if got[i] != accs[i] {
				t.Fatalf("record %d: %v != %v", i, got[i], accs[i])
			}
		}

		// A handful of truncation points per input keeps the fuzz loop fast
		// while still covering header, record, and trailer cuts.
		for _, cut := range []int{0, 1, len(full) / 4, len(full) / 2, len(full) - 1} {
			if cut < 0 || cut >= len(full) {
				continue
			}
			tsrc, err := trace.NewFileSource(bytes.NewReader(full[:cut]))
			if err == nil {
				_, err = trace.ReadAll(tsrc)
			}
			if err == nil {
				t.Fatalf("truncation at %d/%d decoded cleanly", cut, len(full))
			}
		}
	})
}

// FuzzMTRDecode feeds arbitrary bytes to the .mtr decoder: any input may be
// rejected, none may panic or be silently misread as a valid trace longer
// than the data could hold.
func FuzzMTRDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("MTR2"))
	f.Add([]byte("MTR2\x00\x00\x00"))
	f.Add([]byte("MTR2\x10\x80\x20\x10\x03\x02\x00\x01"))
	f.Add([]byte("MTR1\x00\x00\x00\x00\x00\x00\x00\x00"))
	f.Fuzz(func(t *testing.T, data []byte) {
		src, err := trace.NewFileSource(bytes.NewReader(data))
		if err != nil {
			return
		}
		accs, err := trace.ReadAll(src)
		if err != nil {
			return
		}
		// A record costs at least 2 bytes in MTR2; claiming more accesses
		// than the payload could encode means the decoder misread.
		if len(accs) > len(data)/2 {
			t.Fatalf("decoded %d accesses from %d bytes", len(accs), len(data))
		}
	})
}

// FuzzShardDemux checks the property the sharded engines rest on: the
// demux stage partitions an arbitrary trace by the routing function and,
// within every shard, preserves the accesses' original relative order —
// equivalently, each shard receives exactly the subsequence of the trace
// that routes to it, with Steps carrying the global indices.
func FuzzShardDemux(f *testing.F) {
	fuzzSeeds(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		accs := decodeAccesses(data, 16, 250)
		for _, shards := range []int{1, 2, 4} {
			route := func(a trace.Access) int { return int(a.Addr/16) % shards }

			// Expected per-shard subsequences, from a sequential pass.
			want := make([][]trace.Access, shards)
			for _, a := range accs {
				s := route(a)
				want[s] = append(want[s], a)
			}

			got := make([][]trace.Access, shards)
			steps := make([][]uint64, shards)
			err := trace.Demux(nil, trace.NewSliceSource(accs), shards, true, route,
				func(shard int, b trace.ShardBatch) error {
					got[shard] = append(got[shard], b.Accs...)
					steps[shard] = append(steps[shard], b.Steps...)
					return nil
				})
			if err != nil {
				t.Fatal(err)
			}
			for s := 0; s < shards; s++ {
				if len(got[s]) != len(want[s]) {
					t.Fatalf("x%d shard %d: %d accesses, want %d", shards, s, len(got[s]), len(want[s]))
				}
				prev := -1
				for i := range want[s] {
					if got[s][i] != want[s][i] {
						t.Fatalf("x%d shard %d: access %d is %v, want %v (order not preserved)",
							shards, s, i, got[s][i], want[s][i])
					}
					st := int(steps[s][i])
					if st <= prev || st >= len(accs) || accs[st] != got[s][i] {
						t.Fatalf("x%d shard %d: bad global step %d at position %d", shards, s, st, i)
					}
					prev = st
				}
			}
		}
	})
}

// FuzzSegmentIndex hammers the v3 segment-index reader and the indexed
// parallel decoder with raw bytes, single-byte corruptions of valid
// images, and truncations: every rejection must surface one of the
// package's typed errors (never a panic, never a silent short read), and
// whenever the indexed path accepts an input, its parallel decode must
// match the sequential decoder on the same bytes record for record.
func FuzzSegmentIndex(f *testing.F) {
	encodeV3 := func(accs []trace.Access, segBytes int) []byte {
		var buf bytes.Buffer
		w := trace.NewWriterOptions(&buf, trace.Header{BlockSize: 16, PageSize: 4096, Nodes: 64},
			trace.WriterOptions{SegmentBytes: segBytes})
		for _, a := range accs {
			if err := w.Write(a); err != nil {
				return nil
			}
		}
		if err := w.Close(); err != nil {
			return nil
		}
		return buf.Bytes()
	}
	f.Add([]byte{})
	f.Add([]byte("MTR3"))
	f.Add([]byte("MTRX"))
	seed := make([]byte, 96)
	for i := range seed {
		seed[i] = byte(i*13 + 5)
	}
	f.Add(seed)
	f.Add(encodeV3(decodeAccesses(seed, 64, 250), 64))

	typed := func(t *testing.T, what string, err error) {
		if !errors.Is(err, trace.ErrTruncated) && !errors.Is(err, trace.ErrCorrupt) &&
			!errors.Is(err, trace.ErrBadMagic) && !errors.Is(err, trace.ErrNoIndex) {
			t.Fatalf("%s: untyped error: %v", what, err)
		}
	}
	// check decodes b through the indexed path and returns the record
	// count, or -1 when the input was rejected (with a typed error). An
	// accepted input must decode identically through the sequential path.
	check := func(t *testing.T, b []byte) int {
		src, err := trace.NewIndexedSource(bytes.NewReader(b), int64(len(b)), 2)
		var got []trace.Access
		if err == nil {
			got, err = trace.ReadAll(src)
			src.Close()
		}
		if err != nil {
			typed(t, "indexed", err)
			return -1
		}
		fsrc, err := trace.NewFileSource(bytes.NewReader(b))
		var want []trace.Access
		if err == nil {
			want, err = trace.ReadAll(fsrc)
		}
		if err != nil {
			t.Fatalf("indexed decode accepted %d bytes the sequential decoder rejects: %v", len(b), err)
		}
		if len(got) != len(want) {
			t.Fatalf("indexed decoded %d records, sequential %d", len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("record %d: indexed %v, sequential %v", i, got[i], want[i])
			}
		}
		return len(got)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		check(t, data) // raw bytes: typed rejection or consistent decode

		accs := decodeAccesses(data, 64, 250)
		img := encodeV3(accs, 96)
		if img == nil {
			t.Fatal("writer rejected a valid trace")
		}
		if n := check(t, img); n != len(accs) {
			t.Fatalf("fresh image decoded %d records, want %d", n, len(accs))
		}
		if len(data) == 0 {
			return
		}

		// One data-directed byte flip anywhere in the image: it must either
		// be caught (typed error) or leave the decode in agreement with the
		// sequential decoder — never a panic, never divergent records.
		pos := (int(data[0])<<8 | int(data[len(data)/2])) % len(img)
		mut := append([]byte(nil), img...)
		mut[pos] ^= data[len(data)-1] | 1
		check(t, mut)

		// Every truncation must be rejected, and rejected with a type.
		for _, cut := range []int{0, 1, len(img) / 3, len(img) - 17, len(img) - 1} {
			if cut < 0 || cut >= len(img) {
				continue
			}
			if n := check(t, img[:cut]); n >= 0 {
				t.Fatalf("truncation at %d/%d decoded cleanly", cut, len(img))
			}
		}
	})
}

// FuzzTraceCodec round-trips arbitrary traces through the binary format.
func FuzzTraceCodec(f *testing.F) {
	fuzzSeeds(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		accs := decodeAccesses(data, 64, 250)
		var buf bytes.Buffer
		if err := trace.WriteTo(&buf, accs); err != nil {
			t.Fatal(err)
		}
		got, err := trace.ReadFrom(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(accs) {
			t.Fatalf("round trip: %d != %d", len(got), len(accs))
		}
		for i := range accs {
			if got[i] != accs[i] {
				t.Fatalf("record %d: %v != %v", i, got[i], accs[i])
			}
		}
	})
}

// FuzzSegmentCacheKey rewrites a trace file in place and requires the
// shared segment cache to never serve segments decoded from the previous
// bytes: file identity (size + mtime + inode) must fence every rewrite,
// including ones that keep the encoded size identical.
func FuzzSegmentCacheKey(f *testing.F) {
	fuzzSeeds(f)
	writeV3 := func(t *testing.T, path string, accs []trace.Access) {
		t.Helper()
		var buf bytes.Buffer
		w := trace.NewWriterOptions(&buf, trace.Header{BlockSize: 16, PageSize: 4096, Nodes: 64},
			trace.WriterOptions{SegmentBytes: 64})
		for _, a := range accs {
			if err := w.Write(a); err != nil {
				t.Fatal(err)
			}
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	readThrough := func(t *testing.T, cache *TraceSegmentCache, path string) []trace.Access {
		t.Helper()
		src, err := OpenIndexedTraceFileCache(path, 2, cache)
		if err != nil {
			t.Fatal(err)
		}
		defer src.Close()
		got, err := ReadTrace(src)
		if err != nil {
			t.Fatal(err)
		}
		return got
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		before := decodeAccesses(data, 64, 250)
		if len(before) == 0 {
			return
		}
		// A same-length mutation keeps the access count (and usually the
		// encoded size) identical — the hardest rewrite to fence.
		after := append([]trace.Access(nil), before...)
		i := int(data[0]) % len(after)
		after[i].Kind ^= 1
		after[i].Node = memory.NodeID((int(after[i].Node) + 1) % 64)

		dir := t.TempDir()
		path := filepath.Join(dir, "t.mtr")
		writeV3(t, path, before)
		cache := NewTraceSegmentCache(64 << 20)
		if got := readThrough(t, cache, path); !reflect.DeepEqual(got, before) {
			t.Fatalf("first replay decoded %d records, want %d", len(got), len(before))
		}

		writeV3(t, path, after)
		// Guarantee an observable mtime change even on filesystems with
		// coarse timestamps and an unchanged encoded size.
		fi, err := os.Stat(path)
		if err != nil {
			t.Fatal(err)
		}
		bumped := fi.ModTime().Add(time.Second)
		if err := os.Chtimes(path, bumped, bumped); err != nil {
			t.Fatal(err)
		}

		if got := readThrough(t, cache, path); !reflect.DeepEqual(got, after) {
			for j := range after {
				if j < len(got) && got[j] != after[j] {
					t.Fatalf("record %d after rewrite: got %v, want %v (stale cache?)", j, got[j], after[j])
				}
			}
			t.Fatalf("rewrite replay decoded %d records, want %d", len(got), len(after))
		}
	})
}
