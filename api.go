package migratory

import (
	"context"
	"io"
	"os"
	"time"

	"migratory/internal/core"
	"migratory/internal/cost"
	"migratory/internal/directory"
	"migratory/internal/memory"
	"migratory/internal/obs"
	"migratory/internal/placement"
	"migratory/internal/sim"
	"migratory/internal/snoop"
	"migratory/internal/telemetry"
	"migratory/internal/timing"
	"migratory/internal/trace"
	"migratory/internal/workload"
)

// Addressing and machine geometry.
type (
	// Addr is a byte address in the simulated shared address space.
	Addr = memory.Addr
	// BlockID identifies a cache block under a Geometry.
	BlockID = memory.BlockID
	// PageID identifies a 4 KB page.
	PageID = memory.PageID
	// NodeID identifies a processing node.
	NodeID = memory.NodeID
	// Geometry fixes block and page sizes.
	Geometry = memory.Geometry
)

// NewGeometry returns a Geometry for the given block and page sizes.
func NewGeometry(blockSize, pageSize int) (Geometry, error) {
	return memory.NewGeometry(blockSize, pageSize)
}

// MustGeometry is NewGeometry that panics on error.
func MustGeometry(blockSize, pageSize int) Geometry {
	return memory.MustGeometry(blockSize, pageSize)
}

// Traces.
type (
	// Access is one shared-memory reference by one node.
	Access = trace.Access
	// AccessKind distinguishes reads from writes.
	AccessKind = trace.Kind
	// TraceStats summarizes a trace, including an off-line sharing-pattern
	// census.
	TraceStats = trace.Stats
)

// Access kinds.
const (
	Read  = trace.Read
	Write = trace.Write
)

// AnalyzeTrace computes summary statistics for a trace.
func AnalyzeTrace(accs []Access, geom Geometry) TraceStats {
	return trace.Analyze(accs, geom)
}

// BlockPattern is the off-line classification of one block's sharing
// pattern over a whole trace.
type BlockPattern = trace.BlockPattern

// Off-line block sharing patterns.
const (
	PatternPrivate    = trace.PatternPrivate
	PatternReadShared = trace.PatternReadShared
	PatternMigratory  = trace.PatternMigratory
	PatternOther      = trace.PatternOther
)

// ClassifyBlocks returns every touched block's off-line sharing pattern:
// the oracle view against which the on-line protocols are judged.
func ClassifyBlocks(accs []Access, geom Geometry) map[BlockID]BlockPattern {
	return trace.ClassifyBlocks(accs, geom)
}

// MigratoryOracle builds a DirectoryConfig.MigratoryOracle from the
// off-line classification of a trace: read misses to blocks that behave
// migratory over the whole trace are issued as read-with-ownership
// operations (§5's "load with intent to modify").
func MigratoryOracle(accs []Access, geom Geometry) func(BlockID) bool {
	patterns := trace.ClassifyBlocks(accs, geom)
	return func(b BlockID) bool { return patterns[b] == trace.PatternMigratory }
}

// Protocol policies (§4.1).
type Policy = core.Policy

// The four protocols the paper evaluates.
var (
	// Conventional is the replicate-on-read-miss baseline.
	Conventional = core.Conventional
	// Conservative requires two successive migratory events (Figure 3).
	Conservative = core.Conservative
	// Basic classifies after a single event.
	Basic = core.Basic
	// Aggressive starts blocks as migratory and reclassifies immediately.
	Aggressive = core.Aggressive
)

// Stenstrom is the related-work protocol of Stenström, Brorsson & Sandberg
// (§5): Basic's classification rule, but declassifying on any write miss to
// a migratory block.
var Stenstrom = core.Stenstrom

// Policies returns the four published protocols in table order.
func Policies() []Policy { return core.Policies() }

// PolicyByName looks a policy up by name ("conventional", "basic", ...).
func PolicyByName(name string) (Policy, error) { return core.PolicyByName(name) }

// Message accounting (Table 1).
type (
	// Msgs counts short and data-carrying inter-node messages.
	Msgs = cost.Msgs
	// CostOp classifies a coherence operation for message accounting.
	CostOp = cost.Op
)

// MessageCost returns the Table 1 message counts for one operation.
func MessageCost(op CostOp, homeLocal, dirty bool, distantCopies int) Msgs {
	return cost.Charge(op, homeLocal, dirty, distantCopies)
}

// Reduction returns the percentage total-message reduction of with versus
// base.
func Reduction(base, with Msgs) float64 { return cost.Reduction(base, with) }

// Directory-based simulation (§2.2, §3.3).
type (
	// DirectoryConfig describes one CC-NUMA machine.
	DirectoryConfig = directory.Config
	// DirectorySystem simulates one machine running one protocol.
	DirectorySystem = directory.System
	// DirectoryCounters tallies protocol activity.
	DirectoryCounters = directory.Counters
)

// NewDirectorySystem builds a directory-based simulator.
func NewDirectorySystem(cfg DirectoryConfig) (*DirectorySystem, error) {
	return directory.New(cfg)
}

// ShardedDirectorySystem runs one directory protocol over one trace on
// several engine shards in parallel, partitioned by cache-set index;
// counters, histograms, and classifier verdicts merge bit-identical to a
// sequential run.
type ShardedDirectorySystem = directory.Sharded

// NewShardedDirectorySystem builds a set-sharded directory simulator of
// shards engine instances (a positive power of two, at most the per-cache
// set count for finite caches). cfg.Probe must be nil; pass per-shard
// probes via the probes factory (which may be nil) and merge MetricsProbes
// with MergeMetrics afterwards.
func NewShardedDirectorySystem(cfg DirectoryConfig, shards int, probes func(int) Probe) (*ShardedDirectorySystem, error) {
	return directory.NewSharded(cfg, shards, probes)
}

// MaxDirectoryShards returns the largest usable shard count for a finite
// per-node cache (0 for infinite caches, meaning no limit).
func MaxDirectoryShards(cacheBytes, blockSize, assoc int) int {
	return directory.MaxShards(cacheBytes, blockSize, assoc)
}

// Page placement (§3.3).
type PlacementPolicy = placement.Policy

// RoundRobinPlacement assigns page p to node p mod nodes (the execution-
// driven default).
func RoundRobinPlacement(nodes int) PlacementPolicy { return placement.NewRoundRobin(nodes) }

// UsageBasedPlacement profiles the trace and homes each page at its
// most-frequent referencer (the trace-driven "good static placement").
func UsageBasedPlacement(accs []Access, geom Geometry, nodes int) PlacementPolicy {
	return placement.UsageBased(accs, geom, nodes)
}

// FirstTouchPlacement homes each page at the first node to reference it.
func FirstTouchPlacement(accs []Access, geom Geometry, nodes int) PlacementPolicy {
	return placement.FirstTouch(accs, geom, nodes)
}

// Snooping bus simulation (§2.1, §4.3).
type (
	// BusConfig describes one bus-based machine.
	BusConfig = snoop.Config
	// BusSystem simulates one bus-based machine.
	BusSystem = snoop.System
	// BusProtocol selects the snooping protocol variant.
	BusProtocol = snoop.Protocol
	// BusCounts tallies bus transactions by type.
	BusCounts = snoop.Counts
)

// Snooping protocol variants.
const (
	// BusMESI is the conventional MESI baseline.
	BusMESI = snoop.MESI
	// BusAdaptive is the Figure 1/2 adaptive protocol.
	BusAdaptive = snoop.Adaptive
	// BusAdaptiveMigrateFirst uses migrate-on-read-miss as the initial
	// policy.
	BusAdaptiveMigrateFirst = snoop.AdaptiveMigrateFirst
	// BusSymmetry is the non-adaptive Sequent Symmetry model B policy.
	BusSymmetry = snoop.Symmetry
	// BusUpdateOnce is the Alpha-style hybrid update/invalidate protocol
	// of §5, which takes three inter-cache operations per migration.
	BusUpdateOnce = snoop.UpdateOnce
	// BusBerkeley is the Berkeley Ownership protocol (paper ref [12]):
	// dirty cache-to-cache sharing with an Owned state.
	BusBerkeley = snoop.Berkeley
)

// NewBusSystem builds a snooping bus simulator.
func NewBusSystem(cfg BusConfig) (*BusSystem, error) { return snoop.New(cfg) }

// ShardedBusSystem runs one snooping protocol over one trace on several
// engine shards in parallel, partitioned by cache-set index, with counts
// bit-identical to a sequential run.
type ShardedBusSystem = snoop.Sharded

// NewShardedBusSystem builds a set-sharded bus simulator; the constraints
// match NewShardedDirectorySystem.
func NewShardedBusSystem(cfg BusConfig, shards int, probes func(int) Probe) (*ShardedBusSystem, error) {
	return snoop.NewSharded(cfg, shards, probes)
}

// Workloads (the SPLASH substitution of DESIGN.md §4).
type (
	// WorkloadProfile describes one application.
	WorkloadProfile = workload.Profile
	// WorkloadSegment describes one homogeneous region of shared data.
	WorkloadSegment = workload.Segment
	// SharingKind classifies a segment's sharing idiom.
	SharingKind = workload.Kind
)

// Sharing idioms.
const (
	Migratory        = workload.Migratory
	ReadShared       = workload.ReadShared
	ProducerConsumer = workload.ProducerConsumer
	MostlyPrivate    = workload.MostlyPrivate
)

// WorkloadProfiles returns the five SPLASH-like application profiles.
func WorkloadProfiles() []WorkloadProfile { return workload.Profiles() }

// WorkloadByName looks a profile up ("Cholesky", "Locus Route", "MP3D",
// "Pthor", "Water").
func WorkloadByName(name string) (WorkloadProfile, error) { return workload.ProfileByName(name) }

// GenerateWorkload produces a deterministic trace for the named profile.
// length of 0 uses the profile's default.
func GenerateWorkload(name string, nodes int, seed int64, length int) ([]Access, error) {
	p, err := workload.ProfileByName(name)
	if err != nil {
		return nil, err
	}
	return workload.Generate(p, nodes, seed, length)
}

// GenerateFromProfile produces a trace for a caller-defined profile.
func GenerateFromProfile(p WorkloadProfile, nodes int, seed int64, length int) ([]Access, error) {
	return workload.Generate(p, nodes, seed, length)
}

// ScaleWorkload scales a profile's data-set size (object counts and default
// trace length) by factor, modeling inputs larger or smaller than the
// paper's standard ones.
func ScaleWorkload(p WorkloadProfile, factor float64) (WorkloadProfile, error) {
	return workload.Scale(p, factor)
}

// Experiment drivers (§4).
type (
	// ExperimentOptions configures a sweep. Its Parallelism field bounds
	// the worker pool the sweep drivers fan independent simulation cells
	// out on (0 = all CPUs, 1 = sequential), and its Shards field splits
	// each untimed simulation cell across per-set engine shards (1 =
	// sequential, -1 = all CPUs); results are bit-identical regardless of
	// either setting.
	ExperimentOptions = sim.Options
	// Sweep holds a directory-protocol sweep (Tables 2 and 3).
	Sweep = sim.Sweep
	// BusSweep holds the §4.3 bus comparison.
	BusSweep = sim.BusSweep
	// ExecRow is one §4.2 execution-time comparison.
	ExecRow = sim.ExecRow
)

// Table2 regenerates the paper's Table 2 (message counts by cache size).
func Table2(opts ExperimentOptions) (*Sweep, error) { return sim.Table2(opts) }

// Table3 regenerates Table 3 (message counts by block size, infinite
// caches).
func Table3(opts ExperimentOptions) (*Sweep, error) { return sim.Table3(opts) }

// BusComparison regenerates the §4.3 bus results.
func BusComparison(opts ExperimentOptions, cacheSizes []int, protocols []BusProtocol) (*BusSweep, error) {
	return sim.RunBus(opts, cacheSizes, protocols)
}

// ExecutionTime regenerates the §4.2 execution-driven comparison.
func ExecutionTime(opts ExperimentOptions, policy Policy, cacheBytes int) ([]ExecRow, error) {
	return sim.ExecutionTime(opts, policy, cacheBytes)
}

// DetectionAccuracy is one protocol's on-line-vs-off-line classification
// score.
type DetectionAccuracy = sim.Accuracy

// ClassifierAccuracy scores each adaptive protocol's migratory detection
// on one application against the off-line ground truth.
func ClassifierAccuracy(app string, opts ExperimentOptions, cacheBytes int) ([]DetectionAccuracy, error) {
	return sim.ClassifierAccuracy(app, opts, cacheBytes)
}

// NodeCountRow is one machine-size point of the scalability sweep.
type NodeCountRow = sim.NodeCountRow

// NodeCountSweep measures how the message reduction scales with machine
// size (nil nodeCounts = 4, 8, 16, 32, 64).
func NodeCountSweep(app string, nodeCounts []int, opts ExperimentOptions) ([]NodeCountRow, error) {
	return sim.NodeCountSweep(app, nodeCounts, opts)
}

// Observability (internal/obs): a typed coherence event stream emitted by
// both protocol engines, consumed by composable probes.
type (
	// Probe consumes coherence events (attach via DirectoryConfig.Probe,
	// BusConfig.Probe, or ExperimentOptions.Probes).
	Probe = obs.Probe
	// CoherenceEvent is one typed coherence event.
	CoherenceEvent = obs.Event
	// EventKind enumerates coherence event types.
	EventKind = obs.Kind
	// EventFilter selects a subset of the event stream.
	EventFilter = obs.Filter
	// FilterProbe forwards matching events to an inner probe.
	FilterProbe = obs.FilterProbe
	// FuncProbe adapts a function to the Probe interface.
	FuncProbe = obs.FuncProbe
	// MultiProbe fans events out to several probes.
	MultiProbe = obs.MultiProbe
	// MetricsProbe aggregates per-node/per-block counters and histograms.
	MetricsProbe = obs.MetricsProbe
	// EventCounters is one node's or block's event tally.
	EventCounters = obs.Counters
	// EventHistogram is a power-of-two-bucketed distribution.
	EventHistogram = obs.Histogram
	// JSONLProbe streams events as JSON lines.
	JSONLProbe = obs.JSONLProbe
	// TraceEventProbe exports Chrome trace_event JSON for Perfetto.
	TraceEventProbe = obs.TraceEventProbe
)

// Coherence event kinds.
const (
	EventState        = obs.KindState
	EventEvidence     = obs.KindEvidence
	EventClassify     = obs.KindClassify
	EventDeclassify   = obs.KindDeclassify
	EventMigration    = obs.KindMigration
	EventReplication  = obs.KindReplication
	EventInvalidation = obs.KindInvalidation
	EventWriteBack    = obs.KindWriteBack
	EventCleanDrop    = obs.KindCleanDrop
	EventMessage      = obs.KindMessage
	EventOverflow     = obs.KindOverflow
	EventHit          = obs.KindHit
)

// ParseEventKind resolves an event-kind name ("classify", "migration", ...).
func ParseEventKind(name string) (EventKind, error) { return obs.ParseKind(name) }

// EventKinds lists every event kind.
func EventKinds() []EventKind { return obs.Kinds() }

// NewJSONLProbe returns a probe streaming one JSON object per event to w.
func NewJSONLProbe(w io.Writer) *JSONLProbe { return obs.NewJSONLProbe(w) }

// NewTraceEventProbe returns a probe exporting Chrome trace_event JSON
// (openable in Perfetto) to w. Call Close after the run.
func NewTraceEventProbe(w io.Writer) *TraceEventProbe { return obs.NewTraceEventProbe(w) }

// MergeMetrics merges per-cell MetricsProbes, in order, into one aggregate;
// merge sweep cells in paper order for deterministic totals.
func MergeMetrics(probes ...*MetricsProbe) *MetricsProbe { return obs.MergeMetrics(probes...) }

// Timing model (§4.2).
type (
	// TimingParams are the DASH-like latency constants.
	TimingParams = timing.Params
	// TimingConfig describes one timed run.
	TimingConfig = timing.Config
	// TimingResult reports one timed run.
	TimingResult = timing.Result
)

// DefaultTimingParams returns the §4.2 latency constants.
func DefaultTimingParams() TimingParams { return timing.DefaultParams() }

// RunTimed executes a trace under the timing model.
func RunTimed(accs []Access, cfg TimingConfig) (TimingResult, error) { return timing.Run(accs, cfg) }

// Streaming trace sources: pull-based access streams for constant-memory
// pipelines. A TraceSource can be rewound (Reset) for the two-pass
// placement-then-simulation methodology and re-opened by every cell of a
// sweep, so a million-access trace is simulated without ever being held in
// memory. The slice-based entry points above remain thin wrappers over
// these.
type (
	// TraceSource is a re-openable access stream: Next until io.EOF,
	// Reset to rewind, Close when done.
	TraceSource = trace.Source
	// TraceReader is the read side of a source (Next only).
	TraceReader = trace.Reader
	// SliceTraceSource adapts an in-memory trace to TraceSource.
	SliceTraceSource = trace.SliceSource
	// FileTraceSource streams a binary trace file (either format).
	FileTraceSource = trace.FileSource
	// GeneratorTraceSource lazily generates a workload profile's trace,
	// bit-identical to GenerateWorkload with the same parameters.
	GeneratorTraceSource = workload.Source
	// TraceWriter encodes accesses to the streaming .mtr binary format.
	TraceWriter = trace.Writer
	// TraceHeader is the geometry header of a streaming trace file.
	TraceHeader = trace.Header
)

// NewSliceTraceSource wraps an in-memory trace as a TraceSource.
func NewSliceTraceSource(accs []Access) *SliceTraceSource { return trace.NewSliceSource(accs) }

// NewGeneratorSource returns a source that generates the named profile's
// trace lazily (length 0 = the profile default).
func NewGeneratorSource(name string, nodes int, seed int64, length int) (*GeneratorTraceSource, error) {
	p, err := workload.ProfileByName(name)
	if err != nil {
		return nil, err
	}
	return workload.NewSource(p, nodes, seed, length)
}

// OpenTraceFile opens a binary trace file (the streaming .mtr format or
// the legacy fixed-record one) as a TraceSource. The caller must Close it.
func OpenTraceFile(path string) (*FileTraceSource, error) { return trace.OpenFile(path) }

// NewFileTraceSource decodes a binary trace from any seekable reader,
// e.g. a bytes.Reader holding an .mtr image.
func NewFileTraceSource(r io.ReadSeeker) (*FileTraceSource, error) { return trace.NewFileSource(r) }

// PrefetchTraceSource wraps another source with a decode goroutine running
// one batch window ahead, so file IO and varint decode overlap the
// consumer's work. It owns the inner source: Close closes it, Reset
// rewinds it.
type PrefetchTraceSource = trace.PrefetchSource

// NewPrefetchTraceSource returns src wrapped with a prefetching decode
// stage.
func NewPrefetchTraceSource(src TraceSource) *PrefetchTraceSource {
	return trace.NewPrefetchSource(src)
}

// IndexedTraceSource decodes an indexed (v3) .mtr image with parallel
// segment-decode workers; it implements TraceSource, so it drops into any
// run path, and sharded runs feed decoded segments straight to the engine
// shards without a single-producer hand-off.
type IndexedTraceSource = trace.IndexedFileSource

// NewIndexedTraceSource opens an indexed (v3) .mtr image for parallel
// decode with the given worker count (0 = one per GOMAXPROCS). Input
// without a segment index (v1/v2) returns ErrTraceNoIndex; use
// OpenIndexedTraceFile for transparent fallback.
func NewIndexedTraceSource(r io.ReaderAt, size int64, decoders int) (*IndexedTraceSource, error) {
	return trace.NewIndexedSource(r, size, decoders)
}

// OpenIndexedTraceFile opens a trace file with the fastest decode path its
// format supports: indexed parallel decode for v3 files, a prefetching
// sequential decode for v1/v2. Corrupt v3 files fail loudly here rather
// than falling back.
func OpenIndexedTraceFile(path string, decoders int) (TraceSource, error) {
	return trace.OpenFileParallel(path, decoders)
}

// TraceSegmentCache is a process-wide, memory-bounded, ref-counted LRU of
// decoded .mtr segments keyed by file identity (dev/ino + size + mtime) and
// segment index. Concurrent readers wanting the same segment decode it once
// (single-flight) and share one immutable slab, so sweeps that replay one
// trace across many cells — and cohd serving many requests over a hot
// trace — skip redundant decode work. It only engages for indexed (v3)
// files opened by path; v1/v2 and in-memory sources bypass it. Replay is
// bit-identical with or without the cache. Set it on Options.Cache /
// RunConfig.Cache, or pass it to OpenIndexedTraceFileCache.
type TraceSegmentCache = trace.SegmentCache

// DefaultTraceCacheBytes is the default segment-cache capacity the CLI
// tools use for -trace-cache-bytes.
const DefaultTraceCacheBytes = trace.DefaultTraceCacheBytes

// NewTraceSegmentCache returns a segment cache bounded to capBytes of
// decoded accesses. capBytes <= 0 returns nil, which every consumer treats
// as "cache off"; a nil *TraceSegmentCache is safe everywhere one is
// accepted.
func NewTraceSegmentCache(capBytes int64) *TraceSegmentCache {
	return trace.NewSegmentCache(capBytes)
}

// OpenIndexedTraceFileCache is OpenIndexedTraceFile with a shared segment
// cache attached: v3 files consult cache before decoding a segment and
// publish what they decode. A nil cache behaves exactly like
// OpenIndexedTraceFile.
func OpenIndexedTraceFileCache(path string, decoders int, cache *TraceSegmentCache) (TraceSource, error) {
	return trace.OpenFileParallelCache(path, decoders, cache)
}

// NewTraceWriter returns a writer encoding accesses to w in the streaming
// .mtr format (version 3, segment-indexed, by default — see
// trace.NewWriterOptions for the version escape hatch). Close it to emit
// the integrity trailer and the segment index.
func NewTraceWriter(w io.Writer, hdr TraceHeader) *TraceWriter { return trace.NewWriter(w, hdr) }

// ReadTrace drains a source into memory.
func ReadTrace(src TraceReader) ([]Access, error) { return trace.ReadAll(src) }

// TraceBatchReader is the bulk read side of a source: NextBatch fills a
// caller-owned buffer and may return n > 0 together with a non-nil error
// (including io.EOF), io.Reader-style. All sources in this package
// implement it; external TraceReader implementations are adapted by
// FillTraceBatch.
type TraceBatchReader = trace.BatchReader

// DefaultTraceBatchSize is the chunk size the batched run loops use.
const DefaultTraceBatchSize = trace.DefaultBatchSize

// FillTraceBatch fills buf from r, using r's NextBatch when it has one and
// falling back to per-access Next calls otherwise.
func FillTraceBatch(r TraceReader, buf []Access) (int, error) { return trace.FillBatch(r, buf) }

// Unified run API: one declarative config and one entry point for all
// three simulators. This is the same path the CLI tools and the cohd
// service execute, so a config accepted here produces bit-identical
// results on every surface.
type (
	// RunConfig describes one simulation run: engine, workload or trace,
	// policy/protocol, cache geometry, placement, sharding. The zero
	// values mean the paper's defaults; Validate reports problems with
	// the package's typed sentinel errors.
	RunConfig = sim.RunConfig
	// RunResult is a Run's outcome; exactly one engine section is set,
	// and equal results marshal to equal JSON bytes.
	RunResult = sim.RunResult
	// DirectoryRunResult is the directory engine's RunResult section.
	DirectoryRunResult = sim.DirectoryResult
	// BusRunResult is the bus engine's RunResult section.
	BusRunResult = sim.BusResult
)

// Engine names for RunConfig.Engine.
const (
	EngineDirectory = sim.EngineDirectory
	EngineBus       = sim.EngineBus
	EngineTiming    = sim.EngineTiming
)

// Placement names for RunConfig.Placement (directory engine).
const (
	PlacementUsage      = sim.PlacementUsage
	PlacementFirstTouch = sim.PlacementFirstTouch
	PlacementRoundRobin = sim.PlacementRoundRobin
)

// Run executes one simulation described by cfg: the engine is selected by
// cfg.Engine, the trace by cfg.Workload or cfg.TraceFile, and validation
// (RunConfig.Validate) wraps the same typed sentinels every other surface
// returns. A nil ctx behaves like context.Background(); a cancelled one
// aborts the run within a few thousand accesses with ctx.Err().
func Run(ctx context.Context, cfg RunConfig) (*RunResult, error) { return sim.Run(ctx, cfg) }

// RunDirectory builds a directory-based system and streams src through it.
// A nil ctx behaves like context.Background(); a cancelled one aborts the
// run within a few thousand accesses with ctx.Err().
//
// Deprecated: Use Run with EngineDirectory — it adds validation, workload
// and trace-file opening, placement, sharding, and cacheable results. For
// a caller-managed source, set RunConfig's in-process override fields via
// the sim package, or keep using this wrapper; it remains supported.
func RunDirectory(ctx context.Context, src TraceSource, cfg DirectoryConfig) (*DirectorySystem, error) {
	sys, err := directory.New(cfg)
	if err != nil {
		return nil, err
	}
	if err := sys.RunSource(ctx, src); err != nil {
		return nil, err
	}
	return sys, nil
}

// RunBus builds a snooping bus system and streams src through it, with the
// same context semantics as RunDirectory.
//
// Deprecated: Use Run with EngineBus (see RunDirectory's note).
func RunBus(ctx context.Context, src TraceSource, cfg BusConfig) (*BusSystem, error) {
	sys, err := snoop.New(cfg)
	if err != nil {
		return nil, err
	}
	if err := sys.RunSource(ctx, src); err != nil {
		return nil, err
	}
	return sys, nil
}

// RunTimedSource executes a streamed trace under the timing model.
//
// Deprecated: Use Run with EngineTiming (see RunDirectory's note).
func RunTimedSource(ctx context.Context, src TraceSource, cfg TimingConfig) (TimingResult, error) {
	return timing.RunSource(ctx, src, cfg)
}

// AnalyzeTraceSource computes summary statistics in one streaming pass.
func AnalyzeTraceSource(src TraceReader, geom Geometry) (TraceStats, error) {
	return trace.AnalyzeSource(src, geom)
}

// ClassifyBlocksSource is ClassifyBlocks over a streamed trace.
func ClassifyBlocksSource(src TraceReader, geom Geometry) (map[BlockID]BlockPattern, error) {
	return trace.ClassifyBlocksSource(src, geom)
}

// Runtime telemetry (internal/telemetry): live run counters, periodic
// sampling, the opt-in metrics/pprof HTTP server, and per-run manifests.
type (
	// RunStats is the shared atomic counter block a running simulation
	// publishes. Hand one to ExperimentOptions.Stats (or
	// DirectoryConfig.Stats / BusConfig.Stats) and read it concurrently
	// from a TelemetrySampler.
	RunStats = telemetry.RunStats
	// TelemetrySample is one observation of a running simulation:
	// counters, derived throughput, sweep ETA, and Go runtime state.
	TelemetrySample = telemetry.Sample
	// TelemetrySampler periodically snapshots a RunStats into samples.
	TelemetrySampler = telemetry.Sampler
	// TelemetryServer is the opt-in HTTP endpoint serving /metrics
	// (Prometheus text), /status (JSON), /healthz, /debug/vars, and
	// /debug/pprof for a running simulation.
	TelemetryServer = telemetry.Server
	// RunManifest records the exact conditions and outcome of one run,
	// written atomically alongside the results it produced.
	RunManifest = telemetry.Manifest
	// TraceCacheStats is a snapshot of a TraceSegmentCache's counters
	// (hits, misses, single-flight joins, evictions, resident/pinned
	// bytes). TelemetrySample and RunManifest carry one when a cache is
	// live; TraceSegmentCache.Stats returns one directly.
	TraceCacheStats = telemetry.CacheStats
)

// NewTelemetrySampler builds a sampler over stats; interval <= 0 uses the
// default cadence (2s).
func NewTelemetrySampler(stats *RunStats, interval time.Duration) *TelemetrySampler {
	return telemetry.NewSampler(stats, interval)
}

// StartTelemetryServer serves the telemetry endpoints on addr (":0" picks
// a free port; see TelemetryServer.Addr) until Close. manifest may be nil.
func StartTelemetryServer(addr, tool string, sampler *TelemetrySampler, manifest *RunManifest) (*TelemetryServer, error) {
	return telemetry.StartServer(addr, tool, sampler, manifest)
}

// NewRunManifest starts a manifest for the named tool, capturing the
// command line, build version, and machine facts.
func NewRunManifest(tool string) RunManifest { return telemetry.NewManifest(tool) }

// WriteRunManifest persists a manifest atomically under dir and returns
// the file path.
func WriteRunManifest(dir string, m RunManifest) (string, error) {
	return telemetry.WriteManifest(dir, m)
}

// WriteFileAtomic writes data to path via a same-directory temp file and
// rename, so readers never observe a torn file.
func WriteFileAtomic(path string, data []byte, perm os.FileMode) error {
	return telemetry.WriteFileAtomic(path, data, perm)
}

// Sentinel errors, matchable with errors.Is through every wrapping layer
// (lookups, config validation, the trace codec).
var (
	// ErrUnknownPolicy reports a protocol-policy name that does not resolve.
	ErrUnknownPolicy = core.ErrUnknownPolicy
	// ErrUnknownProfile reports a workload-profile name that does not
	// resolve.
	ErrUnknownProfile = workload.ErrUnknownProfile
	// ErrUnknownEventKind reports an event-kind name that does not resolve.
	ErrUnknownEventKind = obs.ErrUnknownEventKind
	// ErrUnknownProtocol reports a bus-protocol name that does not resolve.
	ErrUnknownProtocol = snoop.ErrUnknownProtocol
	// ErrUnknownEngine reports a RunConfig.Engine that names no simulator.
	ErrUnknownEngine = sim.ErrUnknownEngine
	// ErrUnknownPlacement reports a RunConfig.Placement that names no
	// placement policy.
	ErrUnknownPlacement = sim.ErrUnknownPlacement
	// ErrBadGeometry reports invalid block/page geometry.
	ErrBadGeometry = memory.ErrBadGeometry
	// ErrTraceTruncated reports a trace file cut short.
	ErrTraceTruncated = trace.ErrTruncated
	// ErrTraceCorrupt reports a structurally invalid trace file.
	ErrTraceCorrupt = trace.ErrCorrupt
	// ErrTraceBadMagic reports input that is not a trace file at all.
	ErrTraceBadMagic = trace.ErrBadMagic
	// ErrTraceNoIndex reports a trace without a segment index (v1/v2)
	// where an indexed (v3) one was required.
	ErrTraceNoIndex = trace.ErrNoIndex
)
