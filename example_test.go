package migratory_test

import (
	"fmt"

	"migratory"
)

// The §2 scenario: a block migrates between two processors. Under the
// aggressive protocol the read miss hands over an exclusive copy and the
// write completes silently.
func ExampleNewDirectorySystem() {
	geom := migratory.MustGeometry(16, 4096)
	sys, err := migratory.NewDirectorySystem(migratory.DirectoryConfig{
		Nodes:     16,
		Geometry:  geom,
		Policy:    migratory.Aggressive,
		Placement: migratory.RoundRobinPlacement(16),
	})
	if err != nil {
		panic(err)
	}
	turns := []migratory.Access{
		{Node: 1, Kind: migratory.Read, Addr: 0},
		{Node: 1, Kind: migratory.Write, Addr: 0},
		{Node: 2, Kind: migratory.Read, Addr: 0},
		{Node: 2, Kind: migratory.Write, Addr: 0},
	}
	if err := sys.Run(turns); err != nil {
		panic(err)
	}
	m := sys.Messages()
	fmt.Printf("%d short + %d data messages, %d migrations\n",
		m.Short, m.Data, sys.Counters().Migrations)
	// Output: 3 short + 3 data messages, 2 migrations
}

// Table 1's message charges are exposed directly.
func ExampleMessageCost() {
	// A read miss to a dirty block with a remote home and one distant copy.
	m := migratory.MessageCost(migratory.CostOp(0), false, true, 1)
	fmt.Printf("%d short, %d data\n", m.Short, m.Data)
	// Output: 2 short, 2 data
}

// Deterministic synthetic workloads stand in for the paper's SPLASH traces.
func ExampleGenerateWorkload() {
	accs, err := migratory.GenerateWorkload("Water", 16, 1, 10000)
	if err != nil {
		panic(err)
	}
	st := migratory.AnalyzeTrace(accs, migratory.MustGeometry(16, 4096))
	fmt.Printf("%d accesses over %d blocks; migratory blocks dominate: %v\n",
		st.Accesses, st.Blocks, st.MigratoryBlocks > st.ReadSharedBlocks)
	// Output: 10000 accesses over 759 blocks; migratory blocks dominate: true
}

// The off-line classifier labels each block's whole-trace sharing pattern.
func ExampleClassifyBlocks() {
	geom := migratory.MustGeometry(16, 4096)
	accs := []migratory.Access{
		{Node: 0, Kind: migratory.Write, Addr: 0},
		{Node: 1, Kind: migratory.Read, Addr: 0},
		{Node: 1, Kind: migratory.Write, Addr: 0},
		{Node: 2, Kind: migratory.Read, Addr: 0},
		{Node: 2, Kind: migratory.Write, Addr: 0},
	}
	patterns := migratory.ClassifyBlocks(accs, geom)
	fmt.Println(patterns[0])
	// Output: migratory
}

// The bus-based adaptive protocol classifies a block via the Shared-2
// detection and then migrates it.
func ExampleNewBusSystem() {
	sys, err := migratory.NewBusSystem(migratory.BusConfig{
		Nodes:    4,
		Geometry: migratory.MustGeometry(16, 4096),
		Protocol: migratory.BusAdaptive,
	})
	if err != nil {
		panic(err)
	}
	script := []migratory.Access{
		{Node: 0, Kind: migratory.Write, Addr: 0}, // D at P0
		{Node: 1, Kind: migratory.Read, Addr: 0},  // S2/S pair
		{Node: 1, Kind: migratory.Write, Addr: 0}, // Bir: Migratory asserted
		{Node: 2, Kind: migratory.Read, Addr: 0},  // the block migrates
	}
	if err := sys.Run(script); err != nil {
		panic(err)
	}
	c := sys.Counts()
	fmt.Printf("%d read misses, %d write misses, %d invalidations, %d migrations\n",
		c.ReadMiss, c.WriteMiss, c.Invalidation, sys.Migrations())
	// Output: 2 read misses, 1 write misses, 1 invalidations, 1 migrations
}
