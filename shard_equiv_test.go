package migratory

// Equivalence tests for set-sharded execution: a sharded run must produce
// bit-identical counters, cache statistics, histograms, classifier
// verdicts, and merged probe metrics to the sequential run of the same
// configuration, for every policy, both untimed engines, and every source
// kind. Run them under -race (make race / make ci) to also exercise the
// demux pipeline's synchronization.

import (
	"bytes"
	"reflect"
	"testing"
)

// shardCounts are the shard widths the equivalence tests sweep. 8 shards
// exceed this repo's CI core count, which is fine: correctness does not
// depend on parallel speedup.
var shardCounts = []int{2, 8}

func TestShardedDirectoryEquivalence(t *testing.T) {
	accs, mtr := equivTrace(t)
	sources := equivSources(t, accs, mtr)
	for _, pol := range append(Policies(), Stenstrom) {
		for name, open := range sources {
			cfg := DirectoryConfig{
				Nodes:      16,
				Geometry:   MustGeometry(16, 4096),
				CacheBytes: 16 << 10, // 256 sets: finite, so eviction paths shard too
				Policy:     pol,
				Placement:  RoundRobinPlacement(16),
			}
			seq, err := RunDirectory(nil, open(), cfg)
			if err != nil {
				t.Fatalf("%s/%s sequential: %v", pol, name, err)
			}
			for _, shards := range shardCounts {
				sys, err := NewShardedDirectorySystem(cfg, shards, nil)
				if err != nil {
					t.Fatalf("%s/%s x%d: %v", pol, name, shards, err)
				}
				if err := sys.RunSource(nil, open()); err != nil {
					t.Fatalf("%s/%s x%d: %v", pol, name, shards, err)
				}
				if err := sys.CheckInvariants(); err != nil {
					t.Fatalf("%s/%s x%d: %v", pol, name, shards, err)
				}
				if got, want := sys.Messages(), seq.Messages(); got != want {
					t.Fatalf("%s/%s x%d messages: %+v, want %+v", pol, name, shards, got, want)
				}
				if got, want := sys.Counters(), seq.Counters(); got != want {
					t.Fatalf("%s/%s x%d counters: %+v, want %+v", pol, name, shards, got, want)
				}
				sh, sm, se := sys.CacheStats()
				qh, qm, qe := seq.CacheStats()
				if sh != qh || sm != qm || se != qe {
					t.Fatalf("%s/%s x%d cache stats: %d/%d/%d, want %d/%d/%d",
						pol, name, shards, sh, sm, se, qh, qm, qe)
				}
				if got, want := sys.MigratoryBlocks(), seq.MigratoryBlocks(); got != want {
					t.Fatalf("%s/%s x%d migratory blocks: %d, want %d", pol, name, shards, got, want)
				}
				if got, want := sys.EverMigratory(), seq.EverMigratory(); !reflect.DeepEqual(got, want) {
					t.Fatalf("%s/%s x%d: classifier verdicts diverged (%d vs %d blocks)",
						pol, name, shards, len(got), len(want))
				}
				if got, want := sys.InvalidationHistogram(), seq.InvalidationHistogram(); !reflect.DeepEqual(got, want) {
					t.Fatalf("%s/%s x%d histogram: %v, want %v", pol, name, shards, got, want)
				}
			}
		}
	}
}

func TestShardedBusEquivalence(t *testing.T) {
	accs, mtr := equivTrace(t)
	sources := equivSources(t, accs, mtr)
	protocols := []BusProtocol{BusMESI, BusAdaptive, BusAdaptiveMigrateFirst,
		BusSymmetry, BusBerkeley, BusUpdateOnce}
	for _, prot := range protocols {
		for name, open := range sources {
			cfg := BusConfig{
				Nodes:      16,
				Geometry:   MustGeometry(16, 4096),
				CacheBytes: 16 << 10,
				Protocol:   prot,
			}
			seq, err := RunBus(nil, open(), cfg)
			if err != nil {
				t.Fatalf("%s/%s sequential: %v", prot, name, err)
			}
			for _, shards := range shardCounts {
				sys, err := NewShardedBusSystem(cfg, shards, nil)
				if err != nil {
					t.Fatalf("%s/%s x%d: %v", prot, name, shards, err)
				}
				if err := sys.RunSource(nil, open()); err != nil {
					t.Fatalf("%s/%s x%d: %v", prot, name, shards, err)
				}
				if err := sys.CheckInvariants(); err != nil {
					t.Fatalf("%s/%s x%d: %v", prot, name, shards, err)
				}
				if got, want := sys.Counts(), seq.Counts(); got != want {
					t.Fatalf("%s/%s x%d counts: %+v, want %+v", prot, name, shards, got, want)
				}
				if got, want := sys.Migrations(), seq.Migrations(); got != want {
					t.Fatalf("%s/%s x%d migrations: %d, want %d", prot, name, shards, got, want)
				}
				gr, gw := sys.Hits()
				wr, ww := seq.Hits()
				if gr != wr || gw != ww {
					t.Fatalf("%s/%s x%d hits: %d/%d, want %d/%d", prot, name, shards, gr, gw, wr, ww)
				}
			}
		}
	}
}

// TestShardedMetricsProbeEquivalence runs the probe-attached sharded path:
// per-shard MetricsProbes, merged in shard order, must match the single
// sequential probe field for field — including the step-distance
// histograms, which depend on events carrying global access indices.
func TestShardedMetricsProbeEquivalence(t *testing.T) {
	accs, _ := equivTrace(t)
	cfg := DirectoryConfig{
		Nodes:      16,
		Geometry:   MustGeometry(16, 4096),
		CacheBytes: 16 << 10,
		Policy:     Aggressive,
		Placement:  RoundRobinPlacement(16),
	}
	seqProbe := &MetricsProbe{}
	seqCfg := cfg
	seqCfg.Probe = seqProbe
	if _, err := RunDirectory(nil, NewSliceTraceSource(accs), seqCfg); err != nil {
		t.Fatal(err)
	}
	seqProbe.Finish()

	for _, shards := range shardCounts {
		per := make([]*MetricsProbe, shards)
		sys, err := NewShardedDirectorySystem(cfg, shards, func(i int) Probe {
			per[i] = &MetricsProbe{}
			return per[i]
		})
		if err != nil {
			t.Fatalf("x%d: %v", shards, err)
		}
		if err := sys.RunSource(nil, NewSliceTraceSource(accs)); err != nil {
			t.Fatalf("x%d: %v", shards, err)
		}
		merged := MergeMetrics(per...)
		if merged.Variant != seqProbe.Variant {
			t.Fatalf("x%d variant: %q, want %q", shards, merged.Variant, seqProbe.Variant)
		}
		if merged.Total != seqProbe.Total {
			t.Fatalf("x%d total: %+v, want %+v", shards, merged.Total, seqProbe.Total)
		}
		if merged.ByKind != seqProbe.ByKind {
			t.Fatalf("x%d by-kind: %v, want %v", shards, merged.ByKind, seqProbe.ByKind)
		}
		for n := 0; n < cfg.Nodes; n++ {
			if got, want := merged.Node(NodeID(n)), seqProbe.Node(NodeID(n)); got != want {
				t.Fatalf("x%d node %d: %+v, want %+v", shards, n, got, want)
			}
		}
		if !reflect.DeepEqual(merged.MigrationRuns, seqProbe.MigrationRuns) {
			t.Fatalf("x%d migration runs: %+v, want %+v", shards, merged.MigrationRuns, seqProbe.MigrationRuns)
		}
		if !reflect.DeepEqual(merged.ClassifyLatency, seqProbe.ClassifyLatency) {
			t.Fatalf("x%d classify latency: %+v, want %+v", shards, merged.ClassifyLatency, seqProbe.ClassifyLatency)
		}
		if got, want := merged.BlockCount(), seqProbe.BlockCount(); got != want {
			t.Fatalf("x%d block count: %d, want %d", shards, got, want)
		}
	}
}

// TestShardedSweepEquivalence drives sharding through the sim layer: the
// whole Table 2 sweep (five policies, five cache sizes) must render
// identically at any Shards setting, including the -1 auto value and a
// non-power-of-two request (rounded down).
func TestShardedSweepEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("full Table 2 sweep")
	}
	base := ExperimentOptions{Nodes: 16, Seed: 1993, Length: 20_000, Apps: []string{"MP3D"}}
	seq, err := Table2(base)
	if err != nil {
		t.Fatal(err)
	}
	want := seq.Render().String()
	for _, shards := range []int{2, 3, 8, -1} {
		opts := base
		opts.Shards = shards
		got, err := Table2(opts)
		if err != nil {
			t.Fatalf("Shards=%d: %v", shards, err)
		}
		if s := got.Render().String(); s != want {
			t.Fatalf("Shards=%d Table 2 diverged:\n%s\nwant:\n%s", shards, s, want)
		}
	}
}

// TestTimingRejectsShards pins the documented restriction: the timing model
// serializes transactions on a global bus and refuses to shard, even with
// the auto value.
func TestTimingRejectsShards(t *testing.T) {
	for _, shards := range []int{2, -1} {
		opts := ExperimentOptions{Nodes: 16, Seed: 1993, Length: 1000,
			Apps: []string{"MP3D"}, Shards: shards}
		if _, err := ExecutionTime(opts, Basic, 0); err == nil {
			t.Fatalf("Shards=%d: execution-driven timing accepted sharding", shards)
		}
	}
	opts := ExperimentOptions{Nodes: 16, Seed: 1993, Length: 1000,
		Apps: []string{"MP3D"}, Shards: 1}
	if _, err := ExecutionTime(opts, Basic, 0); err != nil {
		t.Fatalf("Shards=1: %v", err)
	}
}

// TestShardedJSONLProbe drives the sharded path with per-shard JSONL
// probes attached — the supported way to export events from a sharded run
// (one stream per shard; JSONLProbe itself is not thread-safe). The total
// exported line count must equal the sequential event count. Run under
// -race this doubles as the concurrency test for the probe-attached
// stamped path.
func TestShardedJSONLProbe(t *testing.T) {
	accs, _ := equivTrace(t)
	cfg := DirectoryConfig{
		Nodes:      16,
		Geometry:   MustGeometry(16, 4096),
		CacheBytes: 16 << 10,
		Policy:     Basic,
		Placement:  RoundRobinPlacement(16),
	}
	seqProbe := &MetricsProbe{}
	seqCfg := cfg
	seqCfg.Probe = seqProbe
	if _, err := RunDirectory(nil, NewSliceTraceSource(accs), seqCfg); err != nil {
		t.Fatal(err)
	}

	const shards = 4
	bufs := make([]*bytes.Buffer, shards)
	jps := make([]*JSONLProbe, shards)
	sys, err := NewShardedDirectorySystem(cfg, shards, func(i int) Probe {
		bufs[i] = &bytes.Buffer{}
		jps[i] = NewJSONLProbe(bufs[i])
		return jps[i]
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.RunSource(nil, NewSliceTraceSource(accs)); err != nil {
		t.Fatal(err)
	}
	var lines uint64
	for i := range jps {
		if err := jps[i].Flush(); err != nil {
			t.Fatal(err)
		}
		lines += uint64(bytes.Count(bufs[i].Bytes(), []byte("\n")))
	}
	if lines != seqProbe.Total.Events {
		t.Fatalf("sharded JSONL exported %d events, sequential probe saw %d",
			lines, seqProbe.Total.Events)
	}
}
