package migratory

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

// noBatch hides a source's NextBatch method, forcing FillTraceBatch (and
// the engines behind it) onto the per-access Next fallback. Running the
// same trace through the raw source and through noBatch therefore compares
// the batched hot loop against the unbatched one.
type noBatch struct {
	src TraceSource
}

func (n noBatch) Next() (Access, error) { return n.src.Next() }
func (n noBatch) Reset() error          { return n.src.Reset() }
func (n noBatch) Close() error          { return nil }

// equivTrace is the shared input of the equivalence tests: one generated
// workload materialized as a slice and encoded as an .mtr image.
func equivTrace(t *testing.T) ([]Access, []byte) {
	t.Helper()
	accs, err := GenerateWorkload("MP3D", 16, 1993, 25_000)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	w := NewTraceWriter(&buf, TraceHeader{BlockSize: 16, PageSize: 4096, Nodes: 16})
	for _, a := range accs {
		if err := w.Write(a); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return accs, buf.Bytes()
}

// equivSources returns the three source kinds over the same trace: the
// in-memory slice, the lazy generator, and the .mtr file decoder.
func equivSources(t *testing.T, accs []Access, mtr []byte) map[string]func() TraceSource {
	t.Helper()
	return map[string]func() TraceSource{
		"slice": func() TraceSource { return NewSliceTraceSource(accs) },
		"generator": func() TraceSource {
			src, err := NewGeneratorSource("MP3D", 16, 1993, 25_000)
			if err != nil {
				t.Fatal(err)
			}
			return src
		},
		"file": func() TraceSource {
			src, err := NewFileTraceSource(bytes.NewReader(mtr))
			if err != nil {
				t.Fatal(err)
			}
			return src
		},
	}
}

// TestBatchedDirectoryEquivalence: for every policy and every source kind,
// the batched pull path lands on counters bit-identical to the per-access
// path.
func TestBatchedDirectoryEquivalence(t *testing.T) {
	accs, mtr := equivTrace(t)
	sources := equivSources(t, accs, mtr)
	for _, pol := range append(Policies(), Stenstrom) {
		for name, open := range sources {
			cfg := DirectoryConfig{
				Nodes:     16,
				Geometry:  MustGeometry(16, 4096),
				Policy:    pol,
				Placement: RoundRobinPlacement(16),
			}
			batched, err := RunDirectory(nil, open(), cfg)
			if err != nil {
				t.Fatalf("%s/%s batched: %v", pol, name, err)
			}
			unbatched, err := RunDirectory(nil, noBatch{open()}, cfg)
			if err != nil {
				t.Fatalf("%s/%s unbatched: %v", pol, name, err)
			}
			if batched.Messages() != unbatched.Messages() {
				t.Errorf("%s/%s: messages %+v != %+v", pol, name, batched.Messages(), unbatched.Messages())
			}
			if batched.Counters() != unbatched.Counters() {
				t.Errorf("%s/%s: counters %+v != %+v", pol, name, batched.Counters(), unbatched.Counters())
			}
		}
	}
}

// TestBatchedBusEquivalence: same bit-identity for every bus protocol
// variant and source kind.
func TestBatchedBusEquivalence(t *testing.T) {
	accs, mtr := equivTrace(t)
	sources := equivSources(t, accs, mtr)
	protocols := []BusProtocol{BusMESI, BusAdaptive, BusAdaptiveMigrateFirst,
		BusSymmetry, BusBerkeley, BusUpdateOnce}
	for _, p := range protocols {
		for name, open := range sources {
			cfg := BusConfig{Nodes: 16, Geometry: MustGeometry(16, 4096), Protocol: p}
			batched, err := RunBus(nil, open(), cfg)
			if err != nil {
				t.Fatalf("%s/%s batched: %v", p, name, err)
			}
			unbatched, err := RunBus(nil, noBatch{open()}, cfg)
			if err != nil {
				t.Fatalf("%s/%s unbatched: %v", p, name, err)
			}
			if batched.Counts() != unbatched.Counts() {
				t.Errorf("%s/%s: counts %+v != %+v", p, name, batched.Counts(), unbatched.Counts())
			}
		}
	}
}

// TestBatchedTimingEquivalence covers the third engine.
func TestBatchedTimingEquivalence(t *testing.T) {
	accs, mtr := equivTrace(t)
	sources := equivSources(t, accs, mtr)
	for _, pol := range Policies() {
		for name, open := range sources {
			cfg := TimingConfig{Nodes: 16, Geometry: MustGeometry(16, 4096), Policy: pol}
			batched, err := RunTimedSource(nil, open(), cfg)
			if err != nil {
				t.Fatalf("%s/%s batched: %v", pol, name, err)
			}
			unbatched, err := RunTimedSource(nil, noBatch{open()}, cfg)
			if err != nil {
				t.Fatalf("%s/%s unbatched: %v", pol, name, err)
			}
			if batched.Cycles != unbatched.Cycles || batched.Msgs != unbatched.Msgs ||
				batched.StallCycles != unbatched.StallCycles ||
				batched.ContentionCycles != unbatched.ContentionCycles {
				t.Errorf("%s/%s: %+v != %+v", pol, name, batched, unbatched)
			}
		}
	}
}

// TestFillTraceBatchFallback pins the adapter contract on a Next-only
// reader: full buffers until the tail, then a short batch, then (0, EOF).
func TestFillTraceBatchFallback(t *testing.T) {
	accs, _ := equivTrace(t)
	src := noBatch{NewSliceTraceSource(accs)}
	buf := make([]Access, 7)
	var got []Access
	for {
		n, err := FillTraceBatch(src, buf)
		got = append(got, buf[:n]...)
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if n != len(buf) {
			t.Fatalf("short batch (%d/%d) without error", n, len(buf))
		}
	}
	if len(got) != len(accs) {
		t.Fatalf("drained %d accesses, want %d", len(got), len(accs))
	}
	for i := range got {
		if got[i] != accs[i] {
			t.Fatalf("access %d: %+v != %+v", i, got[i], accs[i])
		}
	}
}

// FuzzBatchBoundary drives the batched decode path with arbitrary batch
// sizes — including 1 and the whole trace — and checks the reassembled
// stream is identical to the per-access one no matter where the batch
// boundaries fall.
func FuzzBatchBoundary(f *testing.F) {
	accs, err := GenerateWorkload("Water", 16, 7, 2_000)
	if err != nil {
		f.Fatal(err)
	}
	var img bytes.Buffer
	w := NewTraceWriter(&img, TraceHeader{BlockSize: 16, PageSize: 4096, Nodes: 16})
	for _, a := range accs {
		if err := w.Write(a); err != nil {
			f.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		f.Fatal(err)
	}
	mtr := img.Bytes()

	f.Add(uint16(1), false)
	f.Add(uint16(2), true)
	f.Add(uint16(len(accs)), false)
	f.Add(uint16(len(accs)+1), true)
	f.Add(uint16(DefaultTraceBatchSize), false)
	f.Add(uint16(4095), true)
	f.Fuzz(func(t *testing.T, size uint16, fromFile bool) {
		if size == 0 {
			size = 1
		}
		var src TraceSource
		if fromFile {
			fs, err := NewFileTraceSource(bytes.NewReader(mtr))
			if err != nil {
				t.Fatal(err)
			}
			src = fs
		} else {
			src = NewSliceTraceSource(accs)
		}
		buf := make([]Access, size)
		var got []Access
		for {
			n, err := FillTraceBatch(src, buf)
			if n < 0 || n > len(buf) {
				t.Fatalf("NextBatch returned n=%d for len(buf)=%d", n, len(buf))
			}
			got = append(got, buf[:n]...)
			if errors.Is(err, io.EOF) {
				break
			}
			if err != nil {
				t.Fatal(err)
			}
			if len(got) > len(accs) {
				t.Fatalf("stream overran: %d > %d accesses", len(got), len(accs))
			}
		}
		if len(got) != len(accs) {
			t.Fatalf("batch size %d: drained %d accesses, want %d", size, len(got), len(accs))
		}
		for i := range got {
			if got[i] != accs[i] {
				t.Fatalf("batch size %d: access %d is %+v, want %+v", size, i, got[i], accs[i])
			}
		}
		// A drained source keeps reporting (0, EOF).
		if n, err := FillTraceBatch(src, buf); n != 0 || !errors.Is(err, io.EOF) {
			t.Fatalf("after EOF: (%d, %v)", n, err)
		}
	})
}
