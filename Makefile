GO ?= go

.PHONY: build test test-shuffle race vet vuln bench bench-check cover fuzz ci inspect-demo profile apidiff serve-smoke

# Seconds of fuzzing per target in `make fuzz` (kept short for CI).
FUZZTIME ?= 10s

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# Regenerates every experiment benchmark once (with allocation stats); the
# parallel-sweep benchmarks also refresh results/bench_sweep.json.
bench:
	$(GO) test -run '^$$' -bench . -benchmem -benchtime 1x ./...

# Re-measure the key hot-loop benchmarks and compare their rows in
# results/bench_sweep.json against the committed baseline
# (results/bench_baseline.json), failing on regression beyond tolerance.
# The benchmarks refresh the sweep file as a side effect of running.
bench-check:
	$(GO) test -run '^$$' -bench 'BenchmarkBatchedTable2|BenchmarkBatchedBus|BenchmarkProbeOverhead|BenchmarkShardedTable2|BenchmarkPrefetchMTR|BenchmarkParallelDecodeMTR|BenchmarkTelemetryOverhead|BenchmarkSegmentCacheSweep|BenchmarkCohdHotTrace' -benchtime 10x -benchmem .
	$(GO) run ./cmd/benchcheck

# Known-vulnerability scan of the module and its (stdlib-only) dependency
# graph. Uses govulncheck when it is already on PATH — the target does not
# install anything; CI installs the tool in its own step.
vuln:
	@if command -v govulncheck >/dev/null 2>&1; then \
		govulncheck ./...; \
	else \
		echo "vuln: govulncheck not installed; skipping (CI runs it)"; \
	fi

# Short fuzz pass over every fuzz target; go test allows one -fuzz pattern
# per invocation, so each target gets its own run.
fuzz:
	$(GO) test -run '^$$' -fuzz '^FuzzDirectoryProtocols$$' -fuzztime $(FUZZTIME) .
	$(GO) test -run '^$$' -fuzz '^FuzzSnoopProtocols$$' -fuzztime $(FUZZTIME) .
	$(GO) test -run '^$$' -fuzz '^FuzzTraceCodec$$' -fuzztime $(FUZZTIME) .
	$(GO) test -run '^$$' -fuzz '^FuzzMTRRoundTrip$$' -fuzztime $(FUZZTIME) .
	$(GO) test -run '^$$' -fuzz '^FuzzMTRDecode$$' -fuzztime $(FUZZTIME) .
	$(GO) test -run '^$$' -fuzz '^FuzzBatchBoundary$$' -fuzztime $(FUZZTIME) .
	$(GO) test -run '^$$' -fuzz '^FuzzShardDemux$$' -fuzztime $(FUZZTIME) .
	$(GO) test -run '^$$' -fuzz '^FuzzSegmentIndex$$' -fuzztime $(FUZZTIME) .
	$(GO) test -run '^$$' -fuzz '^FuzzSegmentCacheKey$$' -fuzztime $(FUZZTIME) .

# Exported-API compatibility gate: compares the root package against
# APIDIFF_BASE (default HEAD~1) with golang.org/x/exp/cmd/apidiff, failing
# on incompatible changes not listed in scripts/apidiff_allowlist.txt.
# Skips with a notice when apidiff is not on PATH (CI installs it).
apidiff:
	./scripts/apidiff.sh

# End-to-end service smoke: boots the real cohd binary, fires 50 concurrent
# submissions at a 4-deep queue (expecting 429 overflow and zero failed
# admitted runs), checks cache hits, goroutine stability, and a clean
# SIGTERM drain.
serve-smoke:
	$(GO) test -run TestServeSmoke -count=1 -v ./cmd/cohd

# Shuffled test order surfaces inter-test state leaks (shared caches,
# leftover telemetry registrations); CI runs the suite this way.
test-shuffle:
	$(GO) test -shuffle=on ./...

# Coverage profile plus a per-function summary; CI uploads the directory
# as a build artifact. The last line printed is the total.
COVER_DIR ?= results/coverage
cover:
	mkdir -p $(COVER_DIR)
	$(GO) test -coverprofile=$(COVER_DIR)/coverage.out -covermode=atomic ./...
	$(GO) tool cover -func=$(COVER_DIR)/coverage.out > $(COVER_DIR)/coverage.txt
	@tail -n 1 $(COVER_DIR)/coverage.txt

ci: build vet test-shuffle race

# Profile the Table 2 sweep hot loop: run migsim under the CPU and heap
# profilers and print the top CPU consumers. Open the .pprof files with
# `go tool pprof -http=:8080 <file>` for flame graphs.
PROFILE_DIR ?= /tmp/migratory-profile
profile:
	mkdir -p $(PROFILE_DIR)
	$(GO) run ./cmd/migsim -table 2 -format csv \
		-cpuprofile $(PROFILE_DIR)/cpu.pprof \
		-memprofile $(PROFILE_DIR)/mem.pprof > /dev/null
	$(GO) tool pprof -top -nodecount 15 $(PROFILE_DIR)/cpu.pprof

# End-to-end observability demo: generate a short MP3D trace, replay it
# under the basic protocol with the inspector attached, and export the
# event stream for Perfetto (ui.perfetto.dev) alongside the JSONL form.
inspect-demo:
	$(GO) run ./cmd/tracegen -app MP3D -length 20000 -o /tmp/mp3d.mtr
	$(GO) run ./cmd/inspect -trace /tmp/mp3d.mtr -variant basic \
		-kinds classify,declassify,migration -max 25 \
		-jsonl /tmp/mp3d-events.jsonl -perfetto /tmp/mp3d-trace.json
