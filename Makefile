GO ?= go

.PHONY: build test race vet bench ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# Regenerates every experiment benchmark once (with allocation stats); the
# parallel-sweep benchmarks also refresh results/bench_sweep.json.
bench:
	$(GO) test -run '^$$' -bench . -benchmem -benchtime 1x ./...

ci: build vet test race
