package migratory

import (
	"bytes"
	"context"
	"errors"
	"testing"
)

// TestSentinelErrors: every lookup and codec failure is matchable with
// errors.Is through its wrapping layers.
func TestSentinelErrors(t *testing.T) {
	if _, err := PolicyByName("nope"); !errors.Is(err, ErrUnknownPolicy) {
		t.Errorf("PolicyByName: %v not ErrUnknownPolicy", err)
	}
	if _, err := WorkloadByName("nope"); !errors.Is(err, ErrUnknownProfile) {
		t.Errorf("WorkloadByName: %v not ErrUnknownProfile", err)
	}
	if _, err := ParseEventKind("nope"); !errors.Is(err, ErrUnknownEventKind) {
		t.Errorf("ParseEventKind: %v not ErrUnknownEventKind", err)
	}
	if _, err := NewGeometry(13, 4096); !errors.Is(err, ErrBadGeometry) {
		t.Errorf("NewGeometry: %v not ErrBadGeometry", err)
	}
	if _, err := NewGeometry(4096, 16); !errors.Is(err, ErrBadGeometry) {
		t.Errorf("NewGeometry(block>page): %v not ErrBadGeometry", err)
	}

	// The generator source wraps profile lookup too.
	if _, err := NewGeneratorSource("nope", 16, 1, 0); !errors.Is(err, ErrUnknownProfile) {
		t.Errorf("NewGeneratorSource: %v not ErrUnknownProfile", err)
	}

	// Every advertised policy name resolves, including stenstrom.
	for _, name := range []string{"conventional", "conservative", "basic", "aggressive", "stenstrom"} {
		if _, err := PolicyByName(name); err != nil {
			t.Errorf("PolicyByName(%q): %v", name, err)
		}
	}
}

// streamConfig is a small machine shared by the facade tests.
func streamConfig(t *testing.T) DirectoryConfig {
	t.Helper()
	return DirectoryConfig{
		Nodes:     16,
		Geometry:  MustGeometry(16, 4096),
		Policy:    Basic,
		Placement: RoundRobinPlacement(16),
	}
}

// TestRunDirectoryStreamed: the generator-backed source and the
// materialized slice land on bit-identical counters through RunDirectory.
func TestRunDirectoryStreamed(t *testing.T) {
	accs, err := GenerateWorkload("MP3D", 16, 1993, 30_000)
	if err != nil {
		t.Fatal(err)
	}
	fromSlice, err := RunDirectory(nil, NewSliceTraceSource(accs), streamConfig(t))
	if err != nil {
		t.Fatal(err)
	}

	src, err := NewGeneratorSource("MP3D", 16, 1993, 30_000)
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	streamed, err := RunDirectory(context.Background(), src, streamConfig(t))
	if err != nil {
		t.Fatal(err)
	}

	if fromSlice.Messages() != streamed.Messages() {
		t.Fatalf("messages differ: %+v vs %+v", fromSlice.Messages(), streamed.Messages())
	}
	if fromSlice.Counters() != streamed.Counters() {
		t.Fatalf("counters differ: %+v vs %+v", fromSlice.Counters(), streamed.Counters())
	}
}

func TestRunBusStreamed(t *testing.T) {
	accs, err := GenerateWorkload("Water", 16, 1993, 30_000)
	if err != nil {
		t.Fatal(err)
	}
	cfg := BusConfig{Nodes: 16, Geometry: MustGeometry(16, 4096), Protocol: BusAdaptive}
	fromSlice, err := RunBus(nil, NewSliceTraceSource(accs), cfg)
	if err != nil {
		t.Fatal(err)
	}
	src, err := NewGeneratorSource("Water", 16, 1993, 30_000)
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	streamed, err := RunBus(nil, src, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if fromSlice.Counts() != streamed.Counts() {
		t.Fatalf("bus counts differ: %+v vs %+v", fromSlice.Counts(), streamed.Counts())
	}
}

// TestRunTimedSourceStreamed: same equivalence for the timing model.
func TestRunTimedSourceStreamed(t *testing.T) {
	accs, err := GenerateWorkload("Cholesky", 16, 1993, 20_000)
	if err != nil {
		t.Fatal(err)
	}
	cfg := TimingConfig{Nodes: 16, Geometry: MustGeometry(16, 4096), Policy: Basic}
	fromSlice, err := RunTimed(accs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	src, err := NewGeneratorSource("Cholesky", 16, 1993, 20_000)
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	streamed, err := RunTimedSource(nil, src, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if fromSlice.Cycles != streamed.Cycles || fromSlice.Msgs != streamed.Msgs {
		t.Fatalf("timing results differ: %+v vs %+v", fromSlice, streamed)
	}
}

// TestAnalyzeTraceSourceEquivalence: the one-pass streaming census matches
// the slice analysis, including the pattern counts.
func TestAnalyzeTraceSourceEquivalence(t *testing.T) {
	accs, err := GenerateWorkload("Pthor", 16, 1993, 20_000)
	if err != nil {
		t.Fatal(err)
	}
	geom := MustGeometry(16, 4096)
	want := AnalyzeTrace(accs, geom)

	src, err := NewGeneratorSource("Pthor", 16, 1993, 20_000)
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	got, err := AnalyzeTraceSource(src, geom)
	if err != nil {
		t.Fatal(err)
	}
	if got.String() != want.String() {
		t.Fatalf("streamed census:\n%v\nslice census:\n%v", got, want)
	}

	if err := src.Reset(); err != nil {
		t.Fatal(err)
	}
	patterns, err := ClassifyBlocksSource(src, geom)
	if err != nil {
		t.Fatal(err)
	}
	wantPatterns := ClassifyBlocks(accs, geom)
	if len(patterns) != len(wantPatterns) {
		t.Fatalf("classified %d blocks, want %d", len(patterns), len(wantPatterns))
	}
	for b, p := range wantPatterns {
		if patterns[b] != p {
			t.Fatalf("block %d: %v != %v", b, patterns[b], p)
		}
	}
}

// TestRunDirectoryCancellation: a cancelled context aborts the engine with
// ctx.Err().
func TestRunDirectoryCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	src, err := NewGeneratorSource("MP3D", 16, 1993, 100_000)
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	if _, err := RunDirectory(ctx, src, streamConfig(t)); !errors.Is(err, context.Canceled) {
		t.Fatalf("RunDirectory under cancelled ctx = %v", err)
	}
}

// TestTraceWriterRoundTripAPI exercises the exported writer/decoder pair
// and the truncation sentinel.
func TestTraceWriterRoundTripAPI(t *testing.T) {
	accs, err := GenerateWorkload("Water", 16, 1993, 5_000)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	w := NewTraceWriter(&buf, TraceHeader{BlockSize: 16, PageSize: 4096, Nodes: 16})
	for _, a := range accs {
		if err := w.Write(a); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	full := buf.Bytes()
	src, err := NewFileTraceSource(bytes.NewReader(full))
	if err != nil {
		t.Fatal(err)
	}
	got, err := ReadTrace(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(accs) {
		t.Fatalf("round trip: %d != %d", len(got), len(accs))
	}

	cut, err := NewFileTraceSource(bytes.NewReader(full[:len(full)/2]))
	if err == nil {
		_, err = ReadTrace(cut)
	}
	if !errors.Is(err, ErrTraceTruncated) {
		t.Fatalf("truncated trace: %v not ErrTraceTruncated", err)
	}
}
